// Sequential-disk I/O model for the paper's disk-to-disk tests (§5.1).
//
// The experimental study contrasts memory-to-memory transfers (the
// application always ready) against disk-to-disk ones, where the
// application is periodically slowed by I/O: steady sequential bandwidth
// punctuated by flush/seek stalls with some jitter. The observable the
// paper reports — sporadic receive-buffer fill-ups producing rate
// requests without much throughput loss (Fig 11c/d) — comes from the
// stalls, not the average rate.
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hrmc::app {

struct DiskConfig {
  double rate_bps = 12e6 * 8;          ///< sustained bandwidth, bits/s (12 MB/s)
  std::size_t stall_every = 512 * 1024; ///< bytes between flush stalls
  sim::SimTime stall = sim::milliseconds(4);
  double jitter = 0.2;                 ///< ± fraction on each transfer time
};

class DiskModel {
 public:
  DiskModel(const DiskConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  /// Time to read or write `bytes` sequentially at the current position.
  sim::SimTime io_time(std::size_t bytes) {
    const double base_s =
        static_cast<double>(bytes) * 8.0 / cfg_.rate_bps;
    const double jittered =
        base_s * rng_.uniform(1.0 - cfg_.jitter, 1.0 + cfg_.jitter);
    sim::SimTime t = sim::from_seconds(jittered);
    const std::size_t before = pos_ % cfg_.stall_every;
    if (before + bytes >= cfg_.stall_every) {
      t += cfg_.stall;  // flush boundary crossed
    }
    pos_ += bytes;
    return t;
  }

  [[nodiscard]] std::uint64_t position() const { return pos_; }

  /// Folded end-state of the jitter RNG — part of RunResult::rng_digest.
  [[nodiscard]] std::uint64_t rng_digest() const { return rng_.digest(); }

 private:
  DiskConfig cfg_;
  sim::Rng rng_;
  std::uint64_t pos_ = 0;
};

}  // namespace hrmc::app
