// Application processes that drive the protocol endpoints: the
// memory-to-memory and disk-to-disk file-transfer apps of §5.1.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "app/disk.hpp"
#include "app/pattern.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/sender.hpp"
#include "sim/scheduler.hpp"

namespace hrmc::app {

/// Sending application: pushes `total_bytes` of pattern data through an
/// HrmcSender, then closes the stream. With a DiskModel attached, each
/// chunk is "read from disk" (a modelled delay) before it is offered to
/// the socket — the disk-to-disk test. Without one, data is offered as
/// fast as the socket accepts it — the memory-to-memory test.
class SourceApp {
 public:
  struct Options {
    std::uint64_t total_bytes = 10 * 1024 * 1024;
    std::size_t chunk = 64 * 1024;
    std::optional<DiskConfig> disk;
    std::uint64_t seed = 1;
  };

  SourceApp(proto::HrmcSender& sock, sim::Scheduler& sched, Options opt);

  /// Begins the transfer.
  void start();

  [[nodiscard]] bool done() const { return closed_; }
  [[nodiscard]] std::uint64_t bytes_offered() const { return offered_; }
  [[nodiscard]] sim::SimTime started_at() const { return started_at_; }

  /// Disk-jitter RNG end-state (a fixed constant when no disk is
  /// attached, so memory-to-memory digests stay comparable).
  [[nodiscard]] std::uint64_t rng_digest() const {
    return disk_ ? disk_->rng_digest() : 0x5ca1ab1eULL;
  }

 private:
  void pump();          ///< offer pending chunk bytes to the socket
  void fetch_chunk();   ///< model the disk read, then pump

  proto::HrmcSender& sock_;
  sim::Scheduler& sched_;
  Options opt_;
  std::optional<DiskModel> disk_;

  std::vector<std::uint8_t> chunk_buf_;
  std::size_t chunk_len_ = 0;   ///< bytes in chunk_buf_
  std::size_t chunk_off_ = 0;   ///< bytes of chunk_buf_ already accepted
  std::uint64_t offered_ = 0;   ///< stream bytes accepted by the socket
  bool fetching_ = false;
  bool closed_ = false;
  sim::SimTime started_at_ = 0;
};

/// Receiving application: drains an HrmcReceiver, verifying the pattern.
/// `read_rate_bps` caps how fast the application consumes (0 = unlimited)
/// — the paper's observation that the application read rate does not
/// scale with network speed is what produces the extra rate requests on
/// the 100 Mbps network (§5.2, Fig 16b). A DiskModel models disk writes.
class SinkApp {
 public:
  struct Options {
    std::size_t chunk = 64 * 1024;
    double read_rate_bps = 0.0;  ///< 0 = application always ready
    std::optional<DiskConfig> disk;
    bool verify = true;
    std::uint64_t seed = 2;
  };

  SinkApp(proto::HrmcReceiver& sock, sim::Scheduler& sched, Options opt);

  /// True when the entire stream arrived at the protocol layer
  /// (independent of application consumption).
  [[nodiscard]] bool stream_complete() const { return complete_at_ >= 0; }
  [[nodiscard]] sim::SimTime complete_at() const { return complete_at_; }

  /// True once the application consumed the whole stream (EOF).
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] sim::SimTime finished_at() const { return finished_at_; }

  [[nodiscard]] std::uint64_t bytes_read() const { return offset_; }
  [[nodiscard]] bool verify_failed() const { return verify_failed_; }

  /// Disk-jitter RNG end-state (constant when no disk is attached).
  [[nodiscard]] std::uint64_t rng_digest() const {
    return disk_ ? disk_->rng_digest() : 0x5ca1ab1eULL;
  }

 private:
  void maybe_read();
  void do_read();

  proto::HrmcReceiver& sock_;
  sim::Scheduler& sched_;
  Options opt_;
  std::optional<DiskModel> disk_;

  std::vector<std::uint8_t> buf_;
  std::uint64_t offset_ = 0;
  bool reading_ = false;
  bool finished_ = false;
  bool verify_failed_ = false;
  sim::SimTime complete_at_ = -1;
  sim::SimTime finished_at_ = -1;
};

}  // namespace hrmc::app
