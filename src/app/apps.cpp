#include "app/apps.hpp"

#include <algorithm>

namespace hrmc::app {

// --------------------------------------------------------------------
// SourceApp
// --------------------------------------------------------------------

SourceApp::SourceApp(proto::HrmcSender& sock, sim::Scheduler& sched,
                     Options opt)
    : sock_(sock), sched_(sched), opt_(opt) {
  if (opt_.disk) {
    disk_.emplace(*opt_.disk, sim::substream_seed(opt_.seed, "source-disk"));
  }
  chunk_buf_.resize(opt_.chunk);
  sock_.on_writable = [this] { pump(); };
}

void SourceApp::start() {
  started_at_ = sched_.now();
  fetch_chunk();
}

void SourceApp::fetch_chunk() {
  if (closed_ || fetching_) return;
  if (offered_ >= opt_.total_bytes && chunk_off_ >= chunk_len_) {
    sock_.close();
    closed_ = true;
    return;
  }
  if (chunk_off_ < chunk_len_) {
    pump();  // previous chunk not fully accepted yet
    return;
  }
  const std::uint64_t remaining = opt_.total_bytes - offered_;
  chunk_len_ = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining, opt_.chunk));
  chunk_off_ = 0;
  pattern_fill(std::span(chunk_buf_.data(), chunk_len_), offered_);

  if (disk_) {
    fetching_ = true;
    sched_.schedule_after(disk_->io_time(chunk_len_), [this] {
      fetching_ = false;
      pump();
    });
  } else {
    pump();
  }
}

void SourceApp::pump() {
  if (closed_ || fetching_) return;
  while (chunk_off_ < chunk_len_) {
    const std::size_t n = sock_.send(std::span<const std::uint8_t>(
        chunk_buf_.data() + chunk_off_, chunk_len_ - chunk_off_));
    if (n == 0) return;  // send buffer full; on_writable resumes us
    chunk_off_ += n;
    offered_ += n;
  }
  fetch_chunk();
}

// --------------------------------------------------------------------
// SinkApp
// --------------------------------------------------------------------

SinkApp::SinkApp(proto::HrmcReceiver& sock, sim::Scheduler& sched,
                 Options opt)
    : sock_(sock), sched_(sched), opt_(opt) {
  if (opt_.disk) {
    disk_.emplace(*opt_.disk, sim::substream_seed(opt_.seed, "sink-disk"));
  }
  buf_.resize(opt_.chunk);
  sock_.on_readable = [this] { maybe_read(); };
  sock_.on_complete = [this] {
    complete_at_ = sched_.now();
    maybe_read();
  };
}

void SinkApp::maybe_read() {
  if (reading_ || finished_) return;
  reading_ = true;
  do_read();
}

void SinkApp::do_read() {
  const std::size_t n = sock_.recv(std::span(buf_.data(), buf_.size()));
  if (n > 0) {
    if (opt_.verify) {
      const std::size_t ok =
          pattern_verify(std::span<const std::uint8_t>(buf_.data(), n),
                         offset_);
      // A stream that skipped bytes (RMC NAK_ERR) is expected to fail
      // verification; don't double-report in that case.
      if (ok != n && !sock_.stream_error()) verify_failed_ = true;
    }
    offset_ += n;

    // Model the cost of consuming these bytes (app read rate and/or disk
    // write), then continue reading.
    sim::SimTime delay = 0;
    if (disk_) delay += disk_->io_time(n);
    if (opt_.read_rate_bps > 0.0) {
      delay += sim::from_seconds(static_cast<double>(n) * 8.0 /
                                 opt_.read_rate_bps);
    }
    if (delay > 0) {
      sched_.schedule_after(delay, [this] { do_read(); });
    } else {
      // Always-ready application: loop synchronously.
      do_read();
    }
    return;
  }

  reading_ = false;
  if (sock_.eof()) {
    finished_ = true;
    finished_at_ = sched_.now();
  }
}

}  // namespace hrmc::app
