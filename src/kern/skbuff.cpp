#include "kern/skbuff.hpp"

#include <memory>
#include <new>

namespace hrmc::kern {

namespace {

// Pool size classes. Data traffic allocates MSS (1460) + headroom → the
// 2048 class; control packets (headers + a few options) land in 256.
// Requests above the largest class bypass the pool entirely.
constexpr std::size_t kClassSizes[] = {256, 512, 1024, 2048, 4096};
constexpr std::uint32_t kNumClasses =
    static_cast<std::uint32_t>(std::size(kClassSizes));
constexpr std::uint32_t kUnpooled = 0xffffffffu;

// Cap on cached blocks per class: bounds pool memory at
// ~(256+...+4096)*512 ≈ 4 MiB per thread while still absorbing the
// largest queue swings the sweeps produce.
constexpr std::size_t kMaxCachedPerClass = 512;

std::uint32_t class_for(std::size_t cap) {
  for (std::uint32_t k = 0; k < kNumClasses; ++k) {
    if (cap <= kClassSizes[k]) return k;
  }
  return kUnpooled;
}

detail::SkbBlock* raw_block_new(std::size_t byte_cap) {
  void* mem = ::operator new(sizeof(detail::SkbBlock) + byte_cap);
  return new (mem) detail::SkbBlock{};
}

void raw_block_delete(detail::SkbBlock* b) {
  b->~SkbBlock();
  ::operator delete(b);
}

// One pool per thread: simulation cells are single-threaded, so the
// free lists (and the block refcounts) need no synchronization, and
// parallel bench cells cannot perturb each other's recycling order.
struct Pool {
  detail::SkbBlock* free_head[kNumClasses] = {};
  std::size_t cached_count[kNumClasses] = {};
  SkBuffStats stats;

  ~Pool() { trim(); }

  void trim() {
    for (std::uint32_t k = 0; k < kNumClasses; ++k) {
      while (free_head[k] != nullptr) {
        detail::SkbBlock* b = free_head[k];
        free_head[k] = b->next_free;
        raw_block_delete(b);
      }
      cached_count[k] = 0;
    }
  }
};

thread_local Pool g_pool;

// --- View-node pool ----------------------------------------------------
// alloc()/clone() create the SkBuff *view* (plus its shared_ptr control
// block) with allocate_shared through this allocator, so the combined
// node comes off a thread-local free list instead of the general heap.
// Every node in a build has the same size (one allocate_shared
// instantiation), so a handful of 64-byte-granular buckets suffice;
// oversized requests fall through to operator new. Like the block pool,
// this is single-threaded by the one-thread-per-cell invariant.

constexpr std::size_t kViewGrain = 64;
constexpr std::size_t kViewBuckets = 4;  // caches nodes up to 256 bytes
constexpr std::size_t kMaxCachedViews = 1024;

struct ViewPool {
  void* head[kViewBuckets] = {};
  std::size_t count[kViewBuckets] = {};

  ~ViewPool() {
    for (std::size_t k = 0; k < kViewBuckets; ++k) {
      while (head[k] != nullptr) {
        void* p = head[k];
        head[k] = *static_cast<void**>(p);
        ::operator delete(p);
      }
    }
  }
};

thread_local ViewPool g_view_pool;

void* view_node_acquire(std::size_t bytes) {
  const std::size_t k = (bytes - 1) / kViewGrain;
  if (k < kViewBuckets) {
    ViewPool& vp = g_view_pool;
    if (vp.head[k] != nullptr) {
      void* p = vp.head[k];
      vp.head[k] = *static_cast<void**>(p);
      --vp.count[k];
      return p;
    }
    return ::operator new((k + 1) * kViewGrain);
  }
  return ::operator new(bytes);
}

void view_node_release(void* p, std::size_t bytes) noexcept {
  const std::size_t k = (bytes - 1) / kViewGrain;
  ViewPool& vp = g_view_pool;
  if (k < kViewBuckets && vp.count[k] < kMaxCachedViews) {
    *static_cast<void**>(p) = vp.head[k];
    vp.head[k] = p;
    ++vp.count[k];
    return;
  }
  ::operator delete(p);
}

template <typename T>
struct ViewAlloc {
  using value_type = T;
  ViewAlloc() = default;
  template <typename U>
  ViewAlloc(const ViewAlloc<U>&) {}  // NOLINT: converting, as required

  T* allocate(std::size_t n) {
    return static_cast<T*>(view_node_acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    view_node_release(p, n * sizeof(T));
  }
  template <typename U>
  bool operator==(const ViewAlloc<U>&) const {
    return true;
  }
};

}  // namespace

namespace detail {

SkbBlock* skb_block_acquire(std::size_t cap) {
  Pool& pool = g_pool;
  const std::uint32_t k = class_for(cap);
  SkbBlock* b;
  if (k != kUnpooled && pool.free_head[k] != nullptr) {
    b = pool.free_head[k];
    pool.free_head[k] = b->next_free;
    --pool.cached_count[k];
    ++pool.stats.pool_hits;
  } else {
    b = raw_block_new(k != kUnpooled ? kClassSizes[k] : cap);
    ++pool.stats.block_allocs;
  }
  b->refs = 1;
  b->klass = k;
  // Report the *requested* capacity even when the class rounds up, so
  // tailroom (and therefore put()'s failure behavior) is identical to a
  // dedicated allocation — the pool is invisible to protocol code.
  b->cap = cap;
  b->next_free = nullptr;
  pool.stats.live_bytes += cap;
  if (pool.stats.live_bytes > pool.stats.peak_bytes) {
    pool.stats.peak_bytes = pool.stats.live_bytes;
  }
  return b;
}

void skb_block_release(SkbBlock* b) {
  if (--b->refs != 0) return;
  Pool& pool = g_pool;
  pool.stats.live_bytes -=
      b->cap <= pool.stats.live_bytes ? b->cap : pool.stats.live_bytes;
  const std::uint32_t k = b->klass;
  if (k == kUnpooled || pool.cached_count[k] >= kMaxCachedPerClass) {
    raw_block_delete(b);
    return;
  }
  b->next_free = pool.free_head[k];
  pool.free_head[k] = b;
  ++pool.cached_count[k];
}

}  // namespace detail

const SkBuffStats& skbuff_stats() { return g_pool.stats; }

void skbuff_stats_reset() { g_pool.stats = SkBuffStats{}; }

void skbuff_peak_reset() {
  g_pool.stats.peak_bytes = g_pool.stats.live_bytes;
}

std::size_t skbuff_pool_cached() {
  std::size_t total = 0;
  for (std::size_t n : g_pool.cached_count) total += n;
  return total;
}

void skbuff_pool_trim() { g_pool.trim(); }

SkBuffPtr SkBuff::alloc(std::size_t size, std::size_t headroom) {
  return std::allocate_shared<SkBuff>(
      ViewAlloc<SkBuff>{}, Private{},
      detail::skb_block_acquire(size + headroom), headroom);
}

SkBuffPtr SkBuff::clone() const {
  ++block_->refs;
  ++g_pool.stats.clones;
  return std::allocate_shared<SkBuff>(ViewAlloc<SkBuff>{}, Private{}, *this,
                                      block_);
}

void SkBuff::unshare() {
  if (block_->refs == 1) return;
  detail::SkbBlock* copy = detail::skb_block_acquire(block_->cap);
  std::memcpy(copy->bytes() + head_, block_->bytes() + head_, len_);
  --block_->refs;  // cannot hit zero: refs > 1 checked above
  block_ = copy;
  ++g_pool.stats.cow_copies;
}

std::uint8_t* SkBuff::push(std::size_t n) {
  if (n > head_) throw std::logic_error("SkBuff::push: headroom exhausted");
  unshare();
  head_ -= n;
  len_ += n;
  return data();
}

std::uint8_t* SkBuff::pull(std::size_t n) {
  if (n > len_) throw std::logic_error("SkBuff::pull: past end of data");
  head_ += n;
  len_ -= n;
  return data();
}

std::uint8_t* SkBuff::put(std::size_t n) {
  if (n > tailroom()) throw std::logic_error("SkBuff::put: tailroom exhausted");
  unshare();
  std::uint8_t* at = data() + len_;
  len_ += n;
  return at;
}

void SkBuff::trim(std::size_t n) {
  if (n > len_) throw std::logic_error("SkBuff::trim: growing not allowed");
  len_ = n;
}

void SkBuffQueue::push_back(SkBuffPtr skb) {
  bytes_ += skb->size();
  items_.push_back(std::move(skb));
}

void SkBuffQueue::push_front(SkBuffPtr skb) {
  bytes_ += skb->size();
  items_.push_front(std::move(skb));
}

SkBuffPtr SkBuffQueue::pop_front() {
  if (items_.empty()) return nullptr;
  SkBuffPtr skb = std::move(items_.front());
  items_.pop_front();
  bytes_ -= skb->size();
  return skb;
}

void SkBuffQueue::clear() {
  items_.clear();
  bytes_ = 0;
}

SkBuffQueue::iterator SkBuffQueue::erase(iterator it) {
  bytes_ -= (*it)->size();
  return items_.erase(it);
}

void SkBuffQueue::insert(iterator it, SkBuffPtr skb) {
  bytes_ += skb->size();
  items_.insert(it, std::move(skb));
}

}  // namespace hrmc::kern
