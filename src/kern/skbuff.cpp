#include "kern/skbuff.hpp"

namespace hrmc::kern {

SkBuffPtr SkBuff::alloc(std::size_t size, std::size_t headroom) {
  return SkBuffPtr(new SkBuff(size + headroom, headroom));
}

SkBuffPtr SkBuff::clone() const {
  auto copy = SkBuffPtr(new SkBuff(*this));
  return copy;
}

std::uint8_t* SkBuff::push(std::size_t n) {
  if (n > head_) throw std::logic_error("SkBuff::push: headroom exhausted");
  head_ -= n;
  len_ += n;
  return data();
}

std::uint8_t* SkBuff::pull(std::size_t n) {
  if (n > len_) throw std::logic_error("SkBuff::pull: past end of data");
  head_ += n;
  len_ -= n;
  return data();
}

std::uint8_t* SkBuff::put(std::size_t n) {
  if (n > tailroom()) throw std::logic_error("SkBuff::put: tailroom exhausted");
  std::uint8_t* at = data() + len_;
  len_ += n;
  return at;
}

void SkBuff::trim(std::size_t n) {
  if (n > len_) throw std::logic_error("SkBuff::trim: growing not allowed");
  len_ = n;
}

void SkBuffQueue::push_back(SkBuffPtr skb) {
  bytes_ += skb->size();
  items_.push_back(std::move(skb));
}

void SkBuffQueue::push_front(SkBuffPtr skb) {
  bytes_ += skb->size();
  items_.push_front(std::move(skb));
}

SkBuffPtr SkBuffQueue::pop_front() {
  if (items_.empty()) return nullptr;
  SkBuffPtr skb = std::move(items_.front());
  items_.pop_front();
  bytes_ -= skb->size();
  return skb;
}

void SkBuffQueue::clear() {
  items_.clear();
  bytes_ = 0;
}

SkBuffQueue::iterator SkBuffQueue::erase(iterator it) {
  bytes_ -= (*it)->size();
  return items_.erase(it);
}

void SkBuffQueue::insert(iterator it, SkBuffPtr skb) {
  bytes_ += skb->size();
  items_.insert(it, std::move(skb));
}

}  // namespace hrmc::kern
