#include "kern/checksum.hpp"

namespace hrmc::kern {
namespace {

std::uint32_t sum16(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return sum;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return static_cast<std::uint16_t>(~sum16(data) & 0xffff);
}

bool checksum_ok(std::span<const std::uint8_t> data) {
  return sum16(data) == 0xffff;
}

}  // namespace hrmc::kern
