// Modular 32-bit sequence-number arithmetic.
//
// RMC/H-RMC number the byte stream with 32-bit sequence numbers exactly
// like TCP; long transfers wrap, so all comparisons must be modular.
// These are the kernel's before()/after() helpers.
#pragma once

#include <cstdint>

namespace hrmc::kern {

using Seq = std::uint32_t;

/// True if sequence number a is strictly earlier than b (modular).
constexpr bool seq_before(Seq a, Seq b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

/// True if a is strictly later than b (modular).
constexpr bool seq_after(Seq a, Seq b) { return seq_before(b, a); }

constexpr bool seq_before_eq(Seq a, Seq b) { return !seq_after(a, b); }
constexpr bool seq_after_eq(Seq a, Seq b) { return !seq_before(a, b); }

/// True if lo <= s <= hi in modular order (assumes hi - lo < 2^31).
constexpr bool seq_between(Seq s, Seq lo, Seq hi) {
  return seq_after_eq(s, lo) && seq_before_eq(s, hi);
}

/// Signed distance from a to b: positive if b is ahead of a.
constexpr std::int32_t seq_diff(Seq a, Seq b) {
  return static_cast<std::int32_t>(b - a);
}

constexpr Seq seq_max(Seq a, Seq b) { return seq_after(a, b) ? a : b; }
constexpr Seq seq_min(Seq a, Seq b) { return seq_before(a, b) ? a : b; }

}  // namespace hrmc::kern
