// Jiffy clock: the 10 ms kernel tick every protocol timer in the paper is
// expressed in (HZ = 100 on the Linux 2.1 kernels the driver targeted).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hrmc::kern {

/// Kernel ticks per second.
inline constexpr std::int64_t kHz = 100;

/// Duration of one jiffy in simulation time (10 ms).
inline constexpr sim::SimTime kJiffy = sim::kSecond / kHz;

using Jiffies = std::int64_t;

/// Converts simulation time to whole jiffies (floor).
constexpr Jiffies to_jiffies(sim::SimTime t) { return t / kJiffy; }

/// Converts a jiffy count to simulation time.
constexpr sim::SimTime from_jiffies(Jiffies j) { return j * kJiffy; }

/// Rounds a time up to the next jiffy boundary — kernel timers only fire
/// on ticks, and reproducing that granularity matters for the protocol's
/// pacing behaviour.
constexpr sim::SimTime ceil_to_jiffy(sim::SimTime t) {
  return ((t + kJiffy - 1) / kJiffy) * kJiffy;
}

}  // namespace hrmc::kern
