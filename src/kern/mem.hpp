// Memory accountant: per-host byte budgets with deterministic
// allocation-failure injection.
//
// The paper's protocol engine runs inside the Linux kernel, where every
// alloc_skb in softirq context can fail and buffer memory is a hard
// budget the sender's flow control exists to protect. This accountant
// gives the simulation the same adversary: each simulated host owns a
// byte ledger split by component (skbuff blocks, send window, receiver
// reassembly, repairer payload cache, FEC data/parity caches, scheduler
// slab), and every *fallible* allocation in the protocol goes through
// try_charge(), which refuses when the ledger would exceed the
// effective budget — or, while an alloc-failure fault window is armed,
// probabilistically (GFP_ATOMIC-style) from a dedicated RNG substream.
//
// Determinism contract (same as the fault layer): an accountant with
// budget 0 and fail probability 0 draws no randomness and refuses
// nothing, and a run without an accountant installed is bit-identical
// to one that never heard of this header. The Bernoulli stream is drawn
// ONLY while a fault window holds fail_prob > 0, so arming a
// mem-pressure (budget squeeze) window never perturbs any other draw.
//
// Invariant (enforced by construction, checked by trace::verify and the
// chaos oracle): charges only ever enter a ledger through try_charge(),
// which refuses rather than overshoot — live bytes per host NEVER
// exceed the full budget. A squeeze window lowers the *effective*
// budget below bytes already held; consumers observe the overage via
// overage() and evict, but the ledger itself stays within the full
// budget throughout.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "sim/random.hpp"

namespace hrmc::kern {

/// What a charge is for. Stable numbering: trace kAllocFail/kCacheEvict
/// records carry the component in their aux field.
enum class MemComponent : std::uint8_t {
  kSkb = 0,         ///< skbuff data blocks (wire packets in flight)
  kSendWindow = 1,  ///< sender write-queue payload blocks
  kReassembly = 2,  ///< receiver out-of-order reassembly segments
  kRepairCache = 3, ///< repairer payload cache (hierarchical repair)
  kFecData = 4,     ///< receiver FEC data-shard cache
  kFecParity = 5,   ///< receiver FEC parity-row cache
  kSchedSlab = 6,   ///< scheduler slab (sampled, not charged live)
};
inline constexpr std::size_t kMemComponentCount = 7;

/// Rx frames at or below this wire size bypass the NIC admission probe:
/// they model allocations from the driver's GFP_ATOMIC reserve pool,
/// which exists precisely so the feedback that *frees* memory (ACKs,
/// NAKs, UPDATEs — all far below this size) survives memory pressure.
/// Without the reserve, a sender whose window charge has pinned its
/// ledger at the budget would refuse every incoming UPDATE and deadlock:
/// no UPDATE -> no release -> no uncharge -> no UPDATE. Full-size data
/// frames never fit the reserve and stay fallible.
inline constexpr std::size_t kMemRxReserveBytes = 256;

/// Eviction passes drain a ledger to this many bytes *below* the
/// effective budget, not flush to it. A ledger sitting exactly at the
/// line makes the NIC admission probe refuse every full-size frame —
/// and since frame arrival is one of the things that triggers the next
/// eviction pass, a pinned ledger can wedge the run with the squeeze
/// long gone. A couple of MTUs of slack keeps the rx path admitting
/// while the caches refill.
inline constexpr std::uint64_t kMemEvictHeadroomBytes = 4096;

inline const char* mem_component_name(MemComponent c) {
  switch (c) {
    case MemComponent::kSkb: return "skb";
    case MemComponent::kSendWindow: return "send_window";
    case MemComponent::kReassembly: return "reassembly";
    case MemComponent::kRepairCache: return "repair_cache";
    case MemComponent::kFecData: return "fec_data";
    case MemComponent::kFecParity: return "fec_parity";
    case MemComponent::kSchedSlab: return "sched_slab";
  }
  return "?";
}

class MemAccountant {
 public:
  /// `budget_per_host` of 0 means unlimited (budget refusals off; only
  /// the probabilistic fail path can then refuse). `rng_seed` should be
  /// a named substream of the scenario seed — the stream is consumed
  /// only while alloc_fail_prob > 0.
  MemAccountant(std::uint64_t budget_per_host, std::uint64_t rng_seed)
      : budget_(budget_per_host), rng_(rng_seed) {}

  MemAccountant(const MemAccountant&) = delete;
  MemAccountant& operator=(const MemAccountant&) = delete;

  // --- fault-window controls (net::FaultInjector) ---

  /// Budget-squeeze window: the effective budget becomes
  /// budget * (1 - fraction). No-op while budget is unlimited.
  void set_squeeze(double fraction) {
    squeeze_ = std::clamp(fraction, 0.0, 0.95);
  }
  [[nodiscard]] double squeeze() const { return squeeze_; }

  /// GFP_ATOMIC-style probabilistic failure: while p > 0 every fallible
  /// charge/admission first draws Bernoulli(p) and refuses on success.
  void set_alloc_fail_prob(double p) {
    fail_prob_ = std::clamp(p, 0.0, 1.0);
  }
  [[nodiscard]] double alloc_fail_prob() const { return fail_prob_; }

  [[nodiscard]] std::uint64_t budget() const { return budget_; }
  [[nodiscard]] std::uint64_t effective_budget() const {
    if (budget_ == 0) return 0;  // unlimited
    const auto eff = static_cast<std::uint64_t>(
        static_cast<double>(budget_) * (1.0 - squeeze_));
    return std::max<std::uint64_t>(eff, 1);
  }

  // --- the fallible path ---

  /// Charges `bytes` to host's ledger, or refuses (returning false,
  /// charging nothing) when the Bernoulli failure fires or the ledger
  /// would exceed the effective budget.
  bool try_charge(std::uint32_t host, MemComponent c, std::uint64_t bytes) {
    if (!admit_internal(host, bytes)) return false;
    charge_unchecked(host, c, bytes);
    return true;
  }

  /// Admission probe without a charge — the NIC rx path models "could
  /// the driver alloc_skb this frame" and drops on refusal; the skb
  /// memory itself is already accounted at its producer.
  bool admit(std::uint32_t host, std::uint64_t bytes) {
    return admit_internal(host, bytes);
  }

  void uncharge(std::uint32_t host, MemComponent c, std::uint64_t bytes) {
    Ledger& l = ledgers_[host];
    const std::size_t ci = static_cast<std::size_t>(c);
    l.live -= std::min(l.live, bytes);
    l.by_component[ci] -= std::min(l.by_component[ci], bytes);
  }

  // --- pressure probes (consumer eviction policies) ---

  /// Bytes host holds beyond the effective budget (a squeeze window can
  /// push a ledger past the *effective* line without any new charge);
  /// 0 when under, or when unlimited. `headroom` lowers the drain target
  /// below the effective line: evicting flush *to* the budget leaves the
  /// NIC admission probe refusing every full-size frame, so shrinker
  /// passes ask for overage(host, kMemEvictHeadroomBytes) instead.
  [[nodiscard]] std::uint64_t overage(std::uint32_t host,
                                      std::uint64_t headroom = 0) const {
    if (budget_ == 0) return 0;
    const auto it = ledgers_.find(host);
    if (it == ledgers_.end()) return 0;
    const std::uint64_t eff = effective_budget();
    const std::uint64_t target = eff > headroom ? eff - headroom : 1;
    return it->second.live > target ? it->second.live - target : 0;
  }

  [[nodiscard]] std::uint64_t live(std::uint32_t host) const {
    const auto it = ledgers_.find(host);
    return it == ledgers_.end() ? 0 : it->second.live;
  }
  [[nodiscard]] std::uint64_t peak(std::uint32_t host) const {
    const auto it = ledgers_.find(host);
    return it == ledgers_.end() ? 0 : it->second.peak;
  }
  [[nodiscard]] std::uint64_t component(std::uint32_t host,
                                        MemComponent c) const {
    const auto it = ledgers_.find(host);
    if (it == ledgers_.end()) return 0;
    return it->second.by_component[static_cast<std::size_t>(c)];
  }
  /// Highest single-host ledger ever observed (the invariant bound:
  /// never exceeds budget() when a budget is set).
  [[nodiscard]] std::uint64_t peak_any_host() const { return global_peak_; }

  // --- counters ---

  struct Counters {
    std::uint64_t alloc_fails = 0;    ///< total refusals (either cause)
    std::uint64_t budget_denials = 0; ///< refused: would exceed budget
    std::uint64_t prob_denials = 0;   ///< refused: Bernoulli fired
    std::uint64_t charges = 0;        ///< successful try_charge calls
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Folded end-state of the failure-injection stream.
  [[nodiscard]] std::uint64_t rng_digest() const { return rng_.digest(); }

 private:
  struct Ledger {
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
    std::uint64_t by_component[kMemComponentCount] = {};
  };

  bool admit_internal(std::uint32_t host, std::uint64_t bytes) {
    if (fail_prob_ > 0.0 && rng_.chance(fail_prob_)) {
      ++counters_.prob_denials;
      ++counters_.alloc_fails;
      return false;
    }
    const std::uint64_t eff = effective_budget();
    if (eff > 0 && live(host) + bytes > eff) {
      ++counters_.budget_denials;
      ++counters_.alloc_fails;
      return false;
    }
    return true;
  }

  void charge_unchecked(std::uint32_t host, MemComponent c,
                        std::uint64_t bytes) {
    Ledger& l = ledgers_[host];
    l.live += bytes;
    l.by_component[static_cast<std::size_t>(c)] += bytes;
    if (l.live > l.peak) l.peak = l.live;
    if (l.live > global_peak_) global_peak_ = l.live;
    ++counters_.charges;
  }

  std::uint64_t budget_;
  double squeeze_ = 0.0;
  double fail_prob_ = 0.0;
  std::uint64_t global_peak_ = 0;
  Counters counters_;
  std::unordered_map<std::uint32_t, Ledger> ledgers_;
  sim::Rng rng_;
};

}  // namespace hrmc::kern
