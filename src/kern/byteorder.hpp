// Explicit big-endian (network order) field access for header codecs.
// Independent of host byte order, so serialized headers are portable.
#pragma once

#include <cstdint>

namespace hrmc::kern {

inline void put_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void put_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline std::uint16_t get_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}

inline std::uint32_t get_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

}  // namespace hrmc::kern
