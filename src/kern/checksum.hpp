// RFC 1071 Internet checksum — the Checksum field of the RMC/H-RMC
// header (Figure 1) is computed with the same algorithm TCP uses.
#pragma once

#include <cstdint>
#include <span>

namespace hrmc::kern {

/// One's-complement sum of the data, folded to 16 bits. Returns the
/// checksum value to *store* (i.e. already complemented). Computing the
/// checksum over a block whose checksum field holds this value yields 0.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Verifies a block that contains its own checksum: sums to zero iff OK.
bool checksum_ok(std::span<const std::uint8_t> data);

}  // namespace hrmc::kern
