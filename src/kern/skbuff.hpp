// sk_buff analogue — the packet buffer the protocol code is written
// against, mirroring the Linux structure the paper's kernel driver used
// (headroom for layered header push/pull, addressing metadata, and a
// byte-accounted FIFO queue type below it).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace hrmc::kern {

class SkBuff;
using SkBuffPtr = std::shared_ptr<SkBuff>;

/// A packet buffer: one contiguous allocation with reserved headroom so
/// each protocol layer can push its header without copying the payload.
///
///   [ headroom | data ............ | tailroom ]
///              ^data()             ^data()+size()
class SkBuff {
 public:
  /// Allocates a buffer able to hold `size` payload bytes plus
  /// `headroom` bytes of reserved space in front.
  static SkBuffPtr alloc(std::size_t size, std::size_t headroom = 64);

  /// Deep copy (used at multicast fan-out points in routers).
  [[nodiscard]] SkBuffPtr clone() const;

  /// Payload view.
  [[nodiscard]] std::uint8_t* data() { return buf_.data() + head_; }
  [[nodiscard]] const std::uint8_t* data() const { return buf_.data() + head_; }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data(), len_};
  }
  [[nodiscard]] std::span<std::uint8_t> mutable_bytes() {
    return {data(), len_};
  }

  [[nodiscard]] std::size_t headroom() const { return head_; }
  [[nodiscard]] std::size_t tailroom() const {
    return buf_.size() - head_ - len_;
  }

  /// Prepends `n` bytes (consumes headroom); returns pointer to the new
  /// front. Throws if insufficient headroom — protocol bugs should be loud.
  std::uint8_t* push(std::size_t n);

  /// Removes `n` bytes from the front (e.g. after parsing a header).
  std::uint8_t* pull(std::size_t n);

  /// Extends the payload by `n` bytes at the tail; returns pointer to the
  /// newly added region.
  std::uint8_t* put(std::size_t n);

  /// Truncates the payload to `n` bytes.
  void trim(std::size_t n);

  // --- Addressing / metadata (mirrors sk_buff fields the driver used) ---
  std::uint32_t saddr = 0;    ///< source IPv4 address
  std::uint32_t daddr = 0;    ///< destination IPv4 address (may be mcast)
  std::uint8_t protocol = 0;  ///< transport protocol id
  std::uint8_t ttl = 64;      ///< forwarding budget
  sim::SimTime stamp = 0;     ///< timestamp set on transmit/arrival
  std::uint64_t serial = 0;   ///< unique id for tracing (set by net layer)

  /// Total on-wire size used by links/queues for serialization and byte
  /// accounting: payload plus the simulated lower-layer (IP + MAC) framing.
  [[nodiscard]] std::size_t wire_size() const {
    return len_ + kLowerLayerBytes;
  }

  /// Bytes the simulation charges for IP + Ethernet framing per packet.
  static constexpr std::size_t kLowerLayerBytes = 38;

 private:
  SkBuff(std::size_t cap, std::size_t headroom)
      : buf_(cap), head_(headroom), len_(0) {}

  std::vector<std::uint8_t> buf_;
  std::size_t head_;
  std::size_t len_;
};

/// sk_buff_head analogue: FIFO queue of buffers with O(1) byte accounting,
/// used for the write/backlog/receive/out-of-order queues in the protocol.
class SkBuffQueue {
 public:
  using iterator = std::deque<SkBuffPtr>::iterator;
  using const_iterator = std::deque<SkBuffPtr>::const_iterator;

  void push_back(SkBuffPtr skb);
  void push_front(SkBuffPtr skb);

  /// Pops the front buffer; returns nullptr if empty.
  SkBuffPtr pop_front();

  [[nodiscard]] const SkBuffPtr& front() const { return items_.front(); }
  [[nodiscard]] const SkBuffPtr& back() const { return items_.back(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t packets() const { return items_.size(); }

  /// Payload bytes queued (header bytes included; framing not counted) —
  /// this is the figure checked against sndbuf/rcvbuf limits, as the
  /// kernel checks sk->wmem_alloc.
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  void clear();

  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }
  [[nodiscard]] iterator begin() { return items_.begin(); }
  [[nodiscard]] iterator end() { return items_.end(); }

  /// Removes the buffer at `it`, maintaining byte accounting. Returns the
  /// iterator following the erased element.
  iterator erase(iterator it);

  /// Inserts before `it` (the out-of-order queue keeps packets sorted by
  /// sequence number this way).
  void insert(iterator it, SkBuffPtr skb);

 private:
  std::deque<SkBuffPtr> items_;
  std::size_t bytes_ = 0;
};

}  // namespace hrmc::kern
