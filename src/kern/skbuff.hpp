// sk_buff analogue — the packet buffer the protocol code is written
// against, mirroring the Linux structure the paper's kernel driver used
// (headroom for layered header push/pull, addressing metadata, and a
// byte-accounted FIFO queue type below it).
//
// Layout mirrors the kernel split between struct sk_buff (the cheap
// per-reference view: data/len offsets plus metadata) and the shared
// data area skb->head points at. clone() is O(1) — it shares the data
// block exactly like skb_clone() shares skb->head — and any call that
// can *write* through the buffer (push/put/mutable_bytes) performs the
// skb_cow() dance first: if the block is shared it is copied before the
// write. pull()/trim() only move this view's offsets and never copy,
// matching skb_pull()/skb_trim() on a clone.
//
// Data blocks come from a per-thread free-list pool bucketed by size
// class, so steady-state packet traffic recycles blocks instead of
// hitting the allocator. Block refcounts are deliberately non-atomic:
// a block never crosses threads (each simulation cell — scheduler,
// topology, sockets — lives entirely on one thread; see
// harness::ParallelRunner).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace hrmc::kern {

class SkBuff;
using SkBuffPtr = std::shared_ptr<SkBuff>;

/// Hot-path counters for this thread's buffer pool. Cheap enough to
/// keep always-on; the bench harness resets them per workload and
/// reports clone/COW rates in BENCH_core.json.
struct SkBuffStats {
  std::uint64_t block_allocs = 0;  ///< fresh heap allocations
  std::uint64_t pool_hits = 0;     ///< blocks recycled from the free list
  std::uint64_t clones = 0;        ///< O(1) clone() calls
  std::uint64_t cow_copies = 0;    ///< writes that had to unshare a block
  // Live/peak gauges over *requested* block bytes (acquire adds cap,
  // the final release subtracts it — clones share, so a fan-out of N
  // views counts its block once). Reset zeroes both, so peak_bytes is
  // peak-since-reset like the counters above.
  std::uint64_t live_bytes = 0;  ///< bytes in blocks currently referenced
  std::uint64_t peak_bytes = 0;  ///< high-water mark of live_bytes
};

/// This thread's pool counters (monotone; see skbuff_stats_reset).
[[nodiscard]] const SkBuffStats& skbuff_stats();
void skbuff_stats_reset();

/// Re-baselines peak_bytes to the current live_bytes without touching
/// the monotone counters: run_transfer opens a per-run gauge window so
/// RunResult::skb_peak_bytes means "this run's high-water mark" even
/// when many runs share the thread (bench sweeps).
void skbuff_peak_reset();

/// Blocks currently cached in this thread's free lists.
[[nodiscard]] std::size_t skbuff_pool_cached();

/// Frees every cached block (tests; long-lived processes shedding memory).
void skbuff_pool_trim();

namespace detail {

/// The shared data area (skb->head analogue). Allocated with `cap`
/// usable bytes immediately after the header; refcounted by the views
/// that share it and recycled through the per-thread pool when the last
/// reference drops.
struct alignas(std::max_align_t) SkbBlock {
  std::uint32_t refs = 0;
  std::uint32_t klass = 0;   ///< pool size-class index, or kUnpooled
  std::size_t cap = 0;       ///< usable bytes, as requested at alloc time
  SkbBlock* next_free = nullptr;  ///< free-list link while cached

  [[nodiscard]] std::uint8_t* bytes() {
    return reinterpret_cast<std::uint8_t*>(this + 1);
  }
  [[nodiscard]] const std::uint8_t* bytes() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
};

SkbBlock* skb_block_acquire(std::size_t cap);
void skb_block_release(SkbBlock* b);

}  // namespace detail

/// A packet buffer view: offsets into a (possibly shared) data block,
/// with reserved headroom so each protocol layer can push its header
/// without copying the payload.
///
///   [ headroom | data ............ | tailroom ]
///              ^data()             ^data()+size()
class SkBuff {
  /// Gate for the public tag constructors below: only members can name
  /// the tag, so only alloc()/clone() can create SkBuffs — but
  /// std::allocate_shared (which must call a public constructor) works.
  struct Private {
    explicit Private() = default;
  };

 public:
  /// Allocates a buffer able to hold `size` payload bytes plus
  /// `headroom` bytes of reserved space in front.
  static SkBuffPtr alloc(std::size_t size, std::size_t headroom = 64);

  SkBuff(Private, detail::SkbBlock* block, std::size_t headroom)
      : block_(block), head_(headroom), len_(0) {}
  /// Clone constructor: shares the block (caller already bumped refs).
  SkBuff(Private, const SkBuff& o, detail::SkbBlock* shared_block)
      : saddr(o.saddr), daddr(o.daddr), protocol(o.protocol), ttl(o.ttl),
        stamp(o.stamp), serial(o.serial), block_(shared_block),
        head_(o.head_), len_(o.len_) {}

  /// O(1) clone (Linux skb_clone): the returned buffer shares this
  /// one's data block and copies the view offsets and metadata. Used at
  /// multicast fan-out points in routers, where it makes duplication
  /// O(receivers) pointer work instead of O(receivers) memcpys. Writes
  /// through either buffer copy-on-write first (see unshare()).
  [[nodiscard]] SkBuffPtr clone() const;

  ~SkBuff() { detail::skb_block_release(block_); }
  SkBuff(const SkBuff&) = delete;
  SkBuff& operator=(const SkBuff&) = delete;

  /// Payload view. The non-const overload exists for read access
  /// through non-const buffers; *writing* through it on a shared buffer
  /// is forbidden — use mutable_bytes(), push() or put(), which
  /// unshare first.
  [[nodiscard]] std::uint8_t* data() { return block_->bytes() + head_; }
  [[nodiscard]] const std::uint8_t* data() const {
    return block_->bytes() + head_;
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data(), len_};
  }

  /// Writable payload view; copies the data block first if shared.
  [[nodiscard]] std::span<std::uint8_t> mutable_bytes() {
    unshare();
    return {data(), len_};
  }

  [[nodiscard]] std::size_t headroom() const { return head_; }
  [[nodiscard]] std::size_t tailroom() const {
    return block_->cap - head_ - len_;
  }

  /// True if another view currently shares this buffer's data block.
  [[nodiscard]] bool shared() const { return block_->refs > 1; }

  /// Ensures exclusive ownership of the data block (skb_cow): if it is
  /// shared, the visible bytes are copied into a fresh block at the
  /// same offset, preserving headroom and tailroom.
  void unshare();

  /// Prepends `n` bytes (consumes headroom); returns pointer to the new
  /// front. Copies first if the block is shared — the caller is about
  /// to write a header into space other clones may also cover. Throws
  /// if insufficient headroom — protocol bugs should be loud.
  std::uint8_t* push(std::size_t n);

  /// Removes `n` bytes from the front (e.g. after parsing a header).
  /// View-only: never copies, even on a clone (skb_pull semantics), so
  /// the fan-out receive path stays zero-copy.
  std::uint8_t* pull(std::size_t n);

  /// Extends the payload by `n` bytes at the tail; returns pointer to
  /// the newly added region. Copies first if the block is shared.
  std::uint8_t* put(std::size_t n);

  /// Truncates the payload to `n` bytes. View-only: never copies.
  void trim(std::size_t n);

  // --- Addressing / metadata (mirrors sk_buff fields the driver used) ---
  std::uint32_t saddr = 0;    ///< source IPv4 address
  std::uint32_t daddr = 0;    ///< destination IPv4 address (may be mcast)
  std::uint8_t protocol = 0;  ///< transport protocol id
  std::uint8_t ttl = 64;      ///< forwarding budget
  sim::SimTime stamp = 0;     ///< timestamp set on transmit/arrival
  std::uint64_t serial = 0;   ///< unique id for tracing (set by net layer)

  /// Total on-wire size used by links/queues for serialization and byte
  /// accounting: payload plus the simulated lower-layer (IP + MAC) framing.
  [[nodiscard]] std::size_t wire_size() const {
    return len_ + kLowerLayerBytes;
  }

  /// Bytes the simulation charges for IP + Ethernet framing per packet.
  static constexpr std::size_t kLowerLayerBytes = 38;

 private:
  detail::SkbBlock* block_;
  std::size_t head_;
  std::size_t len_;
};

/// sk_buff_head analogue: FIFO queue of buffers with O(1) byte accounting,
/// used for the write/backlog/receive/out-of-order queues in the protocol.
class SkBuffQueue {
 public:
  using iterator = std::deque<SkBuffPtr>::iterator;
  using const_iterator = std::deque<SkBuffPtr>::const_iterator;

  void push_back(SkBuffPtr skb);
  void push_front(SkBuffPtr skb);

  /// Pops the front buffer; returns nullptr if empty.
  SkBuffPtr pop_front();

  [[nodiscard]] const SkBuffPtr& front() const { return items_.front(); }
  [[nodiscard]] const SkBuffPtr& back() const { return items_.back(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t packets() const { return items_.size(); }

  /// Payload bytes queued (header bytes included; framing not counted) —
  /// this is the figure checked against sndbuf/rcvbuf limits, as the
  /// kernel checks sk->wmem_alloc.
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  void clear();

  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }
  [[nodiscard]] iterator begin() { return items_.begin(); }
  [[nodiscard]] iterator end() { return items_.end(); }

  /// Removes the buffer at `it`, maintaining byte accounting. Returns the
  /// iterator following the erased element.
  iterator erase(iterator it);

  /// Inserts before `it`. Sorted consumers (the out-of-order queues)
  /// should locate `it` by scanning from the *tail*: packets
  /// overwhelmingly arrive in order, so the right insertion point is at
  /// or near the back, and a tail scan is O(1) in the common case.
  void insert(iterator it, SkBuffPtr skb);

 private:
  std::deque<SkBuffPtr> items_;
  std::size_t bytes_ = 0;
};

}  // namespace hrmc::kern
