// timer_list analogue.
//
// The H-RMC driver hangs four of these off every socket (transmit,
// retransmit, update, keepalive — Figure 7 of the paper). Semantics match
// the kernel API: a timer holds an expiry in jiffies and a callback;
// add_timer arms it, mod_timer rearms it, del_timer disarms it; expiry is
// quantized to jiffy boundaries.
#pragma once

#include <functional>
#include <utility>

#include "kern/jiffies.hpp"
#include "sim/scheduler.hpp"

namespace hrmc::kern {

class TimerList {
 public:
  TimerList(sim::Scheduler& sched, std::function<void()> fn)
      : sched_(&sched), fn_(std::move(fn)) {}

  ~TimerList() { del_timer(); }
  TimerList(const TimerList&) = delete;
  TimerList& operator=(const TimerList&) = delete;

  /// Arms the timer to fire at absolute jiffy `expires`. If the timer was
  /// already pending it is rearmed (mod_timer semantics).
  void mod_timer(Jiffies expires) {
    del_timer();
    const sim::SimTime when = from_jiffies(expires);
    const sim::SimTime at = when <= sched_->now()
                                ? ceil_to_jiffy(sched_->now() + 1)
                                : ceil_to_jiffy(when);
    handle_ = sched_->schedule_at(at, [this] { fn_(); });
  }

  /// Arms the timer `delta` jiffies from now.
  void mod_timer_in(Jiffies delta) {
    mod_timer(to_jiffies(sched_->now()) + delta);
  }

  /// Disarms the timer if pending.
  void del_timer() { handle_.cancel(); }

  [[nodiscard]] bool pending() const { return handle_.pending(); }

  [[nodiscard]] Jiffies now_jiffies() const {
    return to_jiffies(sched_->now());
  }

 private:
  sim::Scheduler* sched_;
  std::function<void()> fn_;
  sim::EventHandle handle_;
};

}  // namespace hrmc::kern
