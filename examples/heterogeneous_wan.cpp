// Heterogeneous receivers: what hybrid reliability buys you.
//
// Runs the same 4 MB transfer to a mixed group (2 MAN + 2 WAN receivers,
// the paper's Test-4/5 situation) twice: once with the original pure-NAK
// RMC protocol and once with H-RMC. RMC may release buffered data that a
// distant receiver still needs — surfacing NAK_ERR / stream errors —
// while H-RMC holds the window until everyone has confirmed, at a small
// cost in feedback traffic.
#include <cstdio>
#include <iostream>

#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace hrmc;
using namespace hrmc::harness;

namespace {

RunResult run_mode(proto::Mode mode, std::uint64_t seed) {
  Workload wl;
  wl.file_bytes = 4ull << 20;
  Scenario sc;
  sc.topo.network_bps = 10e6;
  sc.topo.seed = seed;
  sc.topo.groups = {net::group_b(2), net::group_c(2)};
  sc.proto.mode = mode;
  // Deliberately small buffers and a short hold: the regime where pure
  // NAK reliability is most at risk on long paths.
  sc.proto.sndbuf = 64 << 10;
  sc.proto.rcvbuf = 64 << 10;
  sc.proto.minbuf_rtts = 4;
  sc.workload = wl;
  sc.seed = seed;
  sc.time_limit = sim::seconds(1800);
  return run_transfer(sc);
}

}  // namespace

int main() {
  std::printf("4 MB to 2 MAN + 2 WAN receivers, 64K buffers, short hold\n\n");
  Table t({"metric", "RMC (pure NAK)", "H-RMC (hybrid)"});

  // Aggregate across a few seeds so the RMC reliability gap, which is a
  // race, has a chance to show itself.
  std::uint64_t rmc_nakerr = 0, hrmc_nakerr = 0;
  std::uint64_t rmc_skipped = 0, hrmc_skipped = 0;
  int rmc_errors = 0, hrmc_errors = 0;
  double rmc_thr = 0, hrmc_thr = 0;
  std::uint64_t rmc_feedback = 0, hrmc_feedback = 0;
  const int kSeeds = 5;
  for (std::uint64_t s = 1; s <= kSeeds; ++s) {
    RunResult rmc = run_mode(proto::Mode::kRmc, s);
    RunResult hrmc = run_mode(proto::Mode::kHrmc, s);
    rmc_nakerr += rmc.sender.nak_errs_sent;
    hrmc_nakerr += hrmc.sender.nak_errs_sent;
    rmc_errors += rmc.any_stream_error ? 1 : 0;
    hrmc_errors += hrmc.any_stream_error ? 1 : 0;
    rmc_thr += rmc.throughput_mbps / kSeeds;
    hrmc_thr += hrmc.throughput_mbps / kSeeds;
    rmc_feedback += rmc.receivers_total.naks_sent +
                    rmc.receivers_total.updates_sent +
                    rmc.receivers_total.rate_requests_sent;
    hrmc_feedback += hrmc.receivers_total.naks_sent +
                     hrmc.receivers_total.updates_sent +
                     hrmc.receivers_total.rate_requests_sent;
    for (const auto& pr : rmc.per_receiver) (void)pr;
    rmc_skipped += rmc.sender.nak_errs_sent;      // unsatisfiable requests
    hrmc_skipped += hrmc.sender.nak_errs_sent;
  }

  t.add_row({"avg throughput (Mbps)", fmt(rmc_thr, 2), fmt(hrmc_thr, 2)});
  t.add_row({"NAK_ERRs (5 runs)", std::to_string(rmc_nakerr),
             std::to_string(hrmc_nakerr)});
  t.add_row({"runs with stream errors", std::to_string(rmc_errors),
             std::to_string(hrmc_errors)});
  t.add_row({"total feedback packets", std::to_string(rmc_feedback),
             std::to_string(hrmc_feedback)});
  t.print(std::cout);

  std::printf(
      "\nH-RMC guarantees delivery (zero NAK_ERRs by construction: the\n"
      "window never advances past an unconfirmed receiver); RMC trades\n"
      "that guarantee for less reverse traffic.\n");
  return 0;
}
