// Long-soak driver: hours-equivalent sim time on a moving network.
//
//   soak [--sim-minutes N] [--seed S] [--out DIR] [--max-segments K]
//
// Runs generate_soak_spec() segments — trunk-flap trains with route
// reconvergence, receiver link flaps, wireless fade windows, and
// membership churn — until the accumulated *simulated* time crosses the
// target. Every segment must pass the chaos reliability oracle (full
// delivery to every stable receiver, no stream errors, clean
// trace::verify) plus counter-drift checks that a single transfer makes
// exact:
//
//   - the sender releases exactly file_bytes (released once, never
//     twice, never short);
//   - every receiver that neither churned nor crashed delivers exactly
//     file_bytes to its application;
//   - no NAK_ERR is ever sent under EvictionPolicy::kStall.
//
// On failure the segment's spec is written as a self-contained repro
// (replayable with `chaos --replay`) next to its trace JSONL, and the
// driver exits 1. Long blackouts are event-sparse, so sim time is far
// cheaper than wall time: the default 10 sim-minutes is a CI smoke
// slice; nightly runs pass --sim-minutes 120 or more.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/chaos.hpp"
#include "trace/jsonl.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sim-minutes N] [--seed S] [--out DIR]\n"
               "          [--max-segments K]\n",
               argv0);
  return 2;
}

bool is_churned(const hrmc::harness::ChaosSpec& spec, std::size_t receiver) {
  for (const auto& c : spec.churn) {
    if (c.receiver == receiver) return true;
  }
  return false;
}

void write_artifacts(const std::string& out_dir, int segment,
                     const hrmc::harness::ChaosSpec& spec,
                     const hrmc::harness::RunResult& res,
                     const std::string& failure) {
  const std::string base =
      out_dir + "/soak-seg" + std::to_string(segment);
  {
    std::ofstream repro(base + "-repro.txt");
    repro << hrmc::harness::serialize_spec(spec);
    repro << "# failure: " << failure << "\n";
  }
  {
    std::ofstream jsonl(base + "-trace.jsonl");
    hrmc::trace::write_jsonl(jsonl, res.trace_records);
  }
  std::fprintf(stderr, "soak: artifacts written to %s-{repro.txt,trace.jsonl}\n",
               base.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  double sim_minutes = 10.0;
  std::uint64_t seed = 1;
  std::string out_dir = ".";
  int max_segments = 10000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--sim-minutes") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sim_minutes = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      out_dir = v;
    } else if (arg == "--max-segments") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      max_segments = std::atoi(v);
    } else {
      return usage(argv[0]);
    }
  }

  const double target_s = sim_minutes * 60.0;
  double sim_total_s = 0.0;
  std::uint64_t rejoins = 0, stale_groups = 0, batch_responses = 0;
  int segment = 0;
  for (; segment < max_segments && sim_total_s < target_s; ++segment) {
    const auto spec = hrmc::harness::generate_soak_spec(
        seed + static_cast<std::uint64_t>(segment));
    const auto sc = hrmc::harness::to_scenario(spec);
    hrmc::harness::RunResult res;
    try {
      res = hrmc::harness::run_transfer(sc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "soak: segment %d (seed %llu) threw: %s\n",
                   segment,
                   static_cast<unsigned long long>(spec.seed), e.what());
      write_artifacts(out_dir, segment, spec, res, e.what());
      return 1;
    }

    std::string failure;
    const auto verdict = hrmc::harness::judge_result(spec, res);
    if (!verdict.ok) {
      failure = verdict.failure;
    } else if (res.sender.bytes_released != spec.file_bytes) {
      failure = "release drift: released " +
                std::to_string(res.sender.bytes_released) + " of " +
                std::to_string(spec.file_bytes) + " stream bytes";
    } else if (res.sender.nak_errs_sent != 0) {
      failure = "NAK_ERR sent under kStall";
    } else {
      for (std::size_t i = 0; i < res.per_receiver.size(); ++i) {
        if (is_churned(spec, i)) continue;  // joined late / left early
        if (res.per_receiver[i].bytes_delivered != spec.file_bytes) {
          failure = "delivery drift: receiver " + std::to_string(i) +
                    " delivered " +
                    std::to_string(res.per_receiver[i].bytes_delivered) +
                    " of " + std::to_string(spec.file_bytes) + " bytes";
          break;
        }
      }
    }
    if (!failure.empty()) {
      std::fprintf(stderr, "soak: segment %d (seed %llu) FAIL: %s\n",
                   segment,
                   static_cast<unsigned long long>(spec.seed),
                   failure.c_str());
      write_artifacts(out_dir, segment, spec, res, failure);
      return 1;
    }

    const double seg_s =
        static_cast<double>(res.elapsed) / 1e9;
    sim_total_s += seg_s;
    rejoins += res.receivers_total.stall_rejoins;
    stale_groups += res.receivers_total.fec_stale_groups;
    batch_responses += res.sender.join_batch_responses;
    std::printf(
        "soak: segment %d seed %llu ok  +%.1fs sim (total %.1fs / %.0fs)  "
        "rejoins=%llu evictions=%llu stalls=%.2fs\n",
        segment, static_cast<unsigned long long>(spec.seed), seg_s,
        sim_total_s, target_s,
        static_cast<unsigned long long>(res.receivers_total.stall_rejoins),
        static_cast<unsigned long long>(res.evicted_count),
        static_cast<double>(res.stall_time) / 1e9);
    std::fflush(stdout);
  }

  std::printf(
      "soak: PASS  %.1f sim-minutes over %d segments "
      "(stall_rejoins=%llu fec_stale_groups=%llu join_batch_responses=%llu)\n",
      sim_total_s / 60.0, segment,
      static_cast<unsigned long long>(rejoins),
      static_cast<unsigned long long>(stale_groups),
      static_cast<unsigned long long>(batch_responses));
  return 0;
}
