// Chaos sweep / replay driver (DESIGN.md §11, EXPERIMENTS.md).
//
//   chaos --seeds N [--start S] [--threads T] [--repro-dir DIR]
//         [--no-shrink] [--shrink-budget R]
//       Runs N seeded random adversarial scenarios through the
//       reliability oracle. On failure, shrinks each failing scenario
//       and writes a self-contained repro file; exits nonzero.
//
//   chaos --replay FILE
//       Re-executes a repro file's scenario (bit-identical to the run
//       that produced it) and reports the oracle verdict. Exits 0 when
//       the oracle passes, 1 when it fails — replaying a genuine repro
//       therefore exits 1 with the same failure line every time.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/chaos.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--start S] [--threads T]\n"
               "          [--repro-dir DIR] [--no-shrink] "
               "[--shrink-budget R] [--mem]\n"
               "       %s --replay FILE\n",
               argv0, argv0);
  return 2;
}

int replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "chaos: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto spec = hrmc::harness::parse_spec(text.str());
  if (!spec) {
    std::fprintf(stderr, "chaos: %s is not a hrmc-chaos-repro v1 file\n",
                 path.c_str());
    return 2;
  }
  const auto verdict = hrmc::harness::judge(*spec);
  if (verdict.ok) {
    std::printf("seed %llu: OK\n",
                static_cast<unsigned long long>(spec->seed));
    return 0;
  }
  std::printf("seed %llu: FAIL: %s\n",
              static_cast<unsigned long long>(spec->seed),
              verdict.failure.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 100;
  std::uint64_t start = 1;
  unsigned threads = 0;
  std::string repro_dir = ".";
  std::string replay_file;
  bool do_shrink = true;
  bool mem = false;
  int shrink_budget = 200;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      seeds = std::atoi(v);
    } else if (arg == "--start") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      start = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      threads = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--repro-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      repro_dir = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      replay_file = v;
    } else if (arg == "--no-shrink") {
      do_shrink = false;
    } else if (arg == "--mem") {
      // Memory-pressure sweep (DESIGN.md §16): every seed gets a
      // per-host budget plus squeeze / alloc-fail windows.
      mem = true;
    } else if (arg == "--shrink-budget") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      shrink_budget = std::atoi(v);
    } else {
      return usage(argv[0]);
    }
  }

  if (!replay_file.empty()) return replay(replay_file);
  if (seeds <= 0) return usage(argv[0]);

  const auto outcomes = hrmc::harness::sweep(start, seeds, threads, mem);
  int failures = 0;
  for (const auto& o : outcomes) {
    if (o.verdict.ok) continue;
    ++failures;
    std::printf("seed %llu: FAIL: %s\n",
                static_cast<unsigned long long>(o.seed),
                o.verdict.failure.c_str());
  }
  std::printf("chaos: %d/%d scenarios passed (seeds %llu..%llu)\n",
              seeds - failures, seeds,
              static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(start + seeds - 1));
  if (failures == 0) return 0;

  if (do_shrink) {
    int written = 0;
    for (const auto& o : outcomes) {
      if (o.verdict.ok) continue;
      if (written >= 3) break;  // minimizing a few failures is plenty
      const auto spec = mem ? hrmc::harness::generate_mem_spec(o.seed)
                            : hrmc::harness::generate_spec(o.seed);
      const auto small = hrmc::harness::shrink(spec, shrink_budget);
      const auto final_verdict = hrmc::harness::judge(small);
      const std::string path = repro_dir + "/chaos-repro-seed" +
                               std::to_string(o.seed) + ".txt";
      std::ofstream out(path);
      out << hrmc::harness::serialize_spec(small);
      out << "# failure: " << final_verdict.failure << "\n";
      std::printf("seed %llu: shrunk repro (%zu fault events, %llu bytes, "
                  "%zu receivers) -> %s\n",
                  static_cast<unsigned long long>(o.seed),
                  small.faults.size(),
                  static_cast<unsigned long long>(small.file_bytes),
                  small.receiver_count(), path.c_str());
      ++written;
    }
  }
  return 1;
}
