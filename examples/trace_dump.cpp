// trace_dump: run a scenario with the protocol tracer on, dump the
// event trace as JSONL to stdout, and replay it through the invariant
// checker. The JSONL stream is what tools/check_trace.py consumes:
//
//   ./trace_dump          | tools/check_trace.py     # clean LAN run
//   ./trace_dump --lossy  | tools/check_trace.py     # crash + flap + burst
//
// Exits non-zero if the built-in checker finds a violation (or if the
// transfer itself fails), so a CI pipe through check_trace.py tests
// both implementations of the invariants against the same trace.
#include <cstring>
#include <iostream>

#include "harness/scenario.hpp"
#include "trace/jsonl.hpp"
#include "trace/verify.hpp"

using namespace hrmc;
using namespace hrmc::harness;

int main(int argc, char** argv) {
  bool lossy = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lossy") == 0) {
      lossy = true;
    } else {
      std::cerr << "usage: trace_dump [--lossy]\n";
      return 2;
    }
  }

  Workload wl;
  wl.file_bytes = 4 * 1024 * 1024;
  Scenario sc = lan_scenario(3, 10e6, 256 * 1024, wl, 20260806);
  sc.name = lossy ? "trace_dump_lossy" : "trace_dump";
  sc.trace.enabled = true;
  sc.trace.sample_period = sim::milliseconds(100);
  if (lossy) {
    // One of everything the fault layer can do: a burst of correlated
    // loss early (while the sender is at full rate, so NAK/retransmit
    // traffic actually appears in the trace), then receiver 1's link
    // flaps, then receiver 2 crashes and restarts.
    net::GilbertElliottConfig ge;
    sc.faults.burst_loss(0, sim::seconds(1), ge)
        .burst_loss_stop(0, sim::milliseconds(2500))
        .link_down(1, sim::seconds(3))
        .link_up(1, sim::milliseconds(3400))
        .crash(2, sim::seconds(4))
        .restart(2, sim::milliseconds(5500));
  }

  RunResult r = run_transfer(sc);
  trace::write_jsonl(std::cout, r.trace_records);

  std::cerr << "trace_dump: " << sc.name << ": "
            << r.trace_records.size() << " records ("
            << r.trace_dropped << " dropped), " << r.samples.size()
            << " samples, completed=" << (r.completed ? 1 : 0) << '\n';
  if (!r.completed || r.any_stream_error || !r.verify_ok) {
    std::cerr << "trace_dump: transfer FAILED\n";
    return 1;
  }

  const trace::VerifyResult v = trace::verify(r.trace_records);
  std::cerr << "trace_dump: verify: " << v.releases_checked
            << " releases / " << v.naks_checked << " naks / "
            << v.sends_checked << " sends checked, " << v.violation_count
            << " violations\n";
  for (const std::string& s : v.violations) {
    std::cerr << "trace_dump: violation: " << s << '\n';
  }
  return v.ok ? 0 : 1;
}
