// Quickstart: the smallest complete H-RMC program.
//
// Builds a simulated 10 Mbps LAN with one sender and two receivers,
// multicasts a 1 MB stream reliably, and prints what happened. This uses
// the public API directly (socket objects + callbacks) rather than the
// experiment harness, so it doubles as the API tour:
//
//   net::Topology      - the simulated internetwork (hosts, routers, NICs)
//   proto::HrmcSender  - sending socket: send() / close() / on_finished
//   proto::HrmcReceiver- receiving socket: open() / recv() / on_complete
//   sim::Scheduler     - the virtual clock everything runs on
#include <cstdio>
#include <vector>

#include "app/pattern.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/sender.hpp"
#include "net/topology.hpp"

using namespace hrmc;

int main() {
  sim::Scheduler sched;

  // A LAN: sender plus 2 receivers in characteristic group A
  // (2 ms delay, 0.005% loss), everything at 10 Mbps.
  net::TopologyConfig tcfg;
  tcfg.network_bps = 10e6;
  tcfg.seed = 7;
  tcfg.groups = {net::group_a(2)};
  net::Topology topo(sched, tcfg);

  const net::Endpoint group{net::make_addr(224, 1, 2, 3), 7500};
  const proto::Config cfg;  // H-RMC defaults: 256K buffers, hybrid mode

  // Receivers: subscribe, JOIN, and drain the socket as data arrives.
  std::vector<std::unique_ptr<proto::HrmcReceiver>> receivers;
  std::vector<std::uint64_t> received(2, 0);
  for (int i = 0; i < 2; ++i) {
    auto rcv = std::make_unique<proto::HrmcReceiver>(
        topo.receiver(i), cfg, group, topo.sender().addr());
    proto::HrmcReceiver* r = rcv.get();
    rcv->on_readable = [r, i, &received, &sched] {
      std::uint8_t buf[4096];
      std::size_t n;
      while ((n = r->recv(buf)) > 0) {
        // Verify the payload against the deterministic test pattern.
        if (app::pattern_verify({buf, n}, received[i]) != n) {
          std::printf("receiver %d: data corruption at offset %llu!\n", i,
                      static_cast<unsigned long long>(received[i]));
        }
        received[i] += n;
      }
    };
    rcv->on_complete = [i, &sched] {
      std::printf("receiver %d: stream complete at t=%s\n", i,
                  sim::format_time(sched.now()).c_str());
    };
    rcv->open();
    receivers.push_back(std::move(rcv));
  }

  // Sender: write 1 MB of pattern data, close, wait for delivery.
  proto::HrmcSender snd(topo.sender(), cfg, group.port, group);
  constexpr std::uint64_t kTotal = 1 << 20;
  std::uint64_t written = 0;
  auto write_some = [&] {
    std::uint8_t buf[8192];
    while (written < kTotal) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(sizeof buf, kTotal - written));
      app::pattern_fill({buf, want}, written);
      const std::size_t n = snd.send({buf, want});
      written += n;
      if (n < want) return;  // send buffer full; on_writable resumes us
    }
    snd.close();
  };
  snd.on_writable = write_some;
  write_some();

  // Run the virtual clock until the sender has confirmation that every
  // receiver holds the whole stream (that is what finished() means in
  // H-RMC mode), with a generous time limit.
  sched.run_while([&] { return !snd.finished(); }, sim::seconds(120));

  std::printf("\nsender finished at t=%s\n",
              sim::format_time(sched.now()).c_str());
  std::printf("  data packets sent:  %llu (%llu retransmissions)\n",
              static_cast<unsigned long long>(snd.stats().data_packets_sent),
              static_cast<unsigned long long>(snd.stats().retransmissions));
  std::printf("  NAKs received:      %llu\n",
              static_cast<unsigned long long>(snd.stats().naks_received));
  std::printf("  updates received:   %llu\n",
              static_cast<unsigned long long>(snd.stats().updates_received));
  std::printf("  probes sent:        %llu\n",
              static_cast<unsigned long long>(snd.stats().probes_sent));
  for (int i = 0; i < 2; ++i) {
    std::printf("  receiver %d got %llu bytes\n", i,
                static_cast<unsigned long long>(received[i]));
  }

  snd.stop();
  for (auto& r : receivers) r->stop();
  return 0;
}
