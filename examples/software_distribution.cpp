// Software distribution: bulk transfer of a 16 MB "upgrade image" to a
// mixed population of 40 receivers — 20 on campus (group A), 15 across
// town (group B), 5 over the WAN (group C) — one of the motivating
// applications from the paper's introduction.
//
// Demonstrates the experiment harness (declarative scenarios), per-group
// reporting, and the effect of the slowest receivers on the whole group.
#include <cstdio>
#include <iostream>

#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace hrmc;
using namespace hrmc::harness;

int main() {
  Workload wl;
  wl.file_bytes = 16ull << 20;
  wl.disk_source = true;  // read the image from disk
  wl.disk_sink = true;    // receivers install to disk

  Scenario sc;
  sc.name = "software-distribution";
  sc.topo.network_bps = 10e6;
  sc.topo.seed = 42;
  sc.topo.groups = {net::group_a(20), net::group_b(15), net::group_c(5)};
  sc.proto.sndbuf = 512 << 10;
  sc.proto.rcvbuf = 512 << 10;
  sc.workload = wl;
  sc.seed = 42;
  sc.time_limit = sim::seconds(3600);

  std::printf("Distributing %llu MB to %d receivers "
              "(20 LAN / 15 MAN / 5 WAN)...\n\n",
              static_cast<unsigned long long>(wl.file_bytes >> 20), 40);
  RunResult r = run_transfer(sc);

  std::printf("completed: %s   elapsed: %s   aggregate goodput: "
              "%.2f Mbps x %zu receivers\n\n",
              r.completed ? "yes" : "NO", sim::format_time(r.elapsed).c_str(),
              r.throughput_mbps, r.per_receiver.size());

  Table t({"group", "receivers", "dup pkts", "NAKs sent", "rate reqs",
           "updates", "probes answered"});
  const char* labels[] = {"A (campus)", "B (metro)", "C (WAN)"};
  const int counts[] = {20, 15, 5};
  std::size_t idx = 0;
  for (int g = 0; g < 3; ++g) {
    proto::ReceiverStats sum;
    for (int i = 0; i < counts[g]; ++i, ++idx) {
      const auto& s = r.per_receiver[idx];
      sum.duplicate_packets += s.duplicate_packets;
      sum.naks_sent += s.naks_sent;
      sum.rate_requests_sent += s.rate_requests_sent;
      sum.updates_sent += s.updates_sent;
      sum.probes_received += s.probes_received;
    }
    t.add_row({labels[g], std::to_string(counts[g]),
               std::to_string(sum.duplicate_packets),
               std::to_string(sum.naks_sent),
               std::to_string(sum.rate_requests_sent),
               std::to_string(sum.updates_sent),
               std::to_string(sum.probes_received)});
  }
  t.print(std::cout);

  std::printf(
      "\nsender: %llu data packets, %llu retransmissions, "
      "%llu probes, complete-info at release %.1f%%\n",
      static_cast<unsigned long long>(r.sender.data_packets_sent),
      static_cast<unsigned long long>(r.sender.retransmissions),
      static_cast<unsigned long long>(r.sender.probes_sent),
      r.complete_info_pct());
  std::printf("reliability: verify_ok=%s stream_errors=%s nak_errs=%llu\n",
              r.verify_ok ? "yes" : "NO",
              r.any_stream_error ? "YES" : "none",
              static_cast<unsigned long long>(r.sender.nak_errs_sent));
  return r.completed && r.verify_ok ? 0 : 1;
}
