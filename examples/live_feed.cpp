// Live feed: a paced, bursty source rather than a file transfer.
//
// A "collaboration session" pushes ~2 Mbps of data in 100 ms bursts with
// idle gaps (think shared-whiteboard updates). This exercises the parts
// of the protocol a bulk transfer never shows off:
//   - KEEPALIVEs with exponential backoff during idle periods, which let
//     receivers detect a lost burst tail (§2, "NAK-Based Reliability");
//   - the rate controller restarting after quiet periods;
//   - the dynamic update period stretching out when little is in flight.
#include <cstdio>
#include <vector>

#include "app/pattern.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/sender.hpp"
#include "net/topology.hpp"

using namespace hrmc;

int main() {
  sim::Scheduler sched;
  net::TopologyConfig tcfg;
  tcfg.network_bps = 10e6;
  tcfg.seed = 99;
  tcfg.groups = {net::group_a(2), net::group_b(1)};
  net::Topology topo(sched, tcfg);

  const net::Endpoint group{net::make_addr(224, 9, 9, 9), 7600};
  proto::Config cfg;
  cfg.sndbuf = 128 << 10;
  cfg.rcvbuf = 128 << 10;

  std::vector<std::unique_ptr<proto::HrmcReceiver>> receivers;
  std::vector<std::uint64_t> got(topo.receiver_count(), 0);
  for (std::size_t i = 0; i < topo.receiver_count(); ++i) {
    auto rcv = std::make_unique<proto::HrmcReceiver>(
        topo.receiver(i), cfg, group, topo.sender().addr());
    proto::HrmcReceiver* r = rcv.get();
    rcv->on_readable = [r, i, &got] {
      std::uint8_t buf[4096];
      std::size_t n;
      while ((n = r->recv(buf)) > 0) {
        if (app::pattern_verify({buf, n}, got[i]) != n) {
          std::printf("receiver %zu: CORRUPTION\n", i);
        }
        got[i] += n;
      }
    };
    rcv->open();
    receivers.push_back(std::move(rcv));
  }

  proto::HrmcSender snd(topo.sender(), cfg, group.port, group);

  // The feed: 40 bursts of 25 KB, one burst per second but written in a
  // 100 ms flurry, then silence (keepalives cover the gaps).
  constexpr int kBursts = 40;
  constexpr std::size_t kBurstBytes = 25 * 1024;
  std::uint64_t written = 0;
  for (int b = 0; b < kBursts; ++b) {
    sched.schedule_at(sim::seconds(1) + b * sim::seconds(1), [&, b] {
      std::vector<std::uint8_t> buf(kBurstBytes);
      app::pattern_fill(buf, written);
      const std::size_t n = snd.send(buf);
      written += n;
      if (n < kBurstBytes) {
        std::printf("t=%s burst %d truncated (send buffer full)\n",
                    sim::format_time(sched.now()).c_str(), b);
      }
      if (b == kBursts - 1) snd.close();
    });
  }

  sched.run_while([&] { return !snd.finished(); }, sim::seconds(120));

  std::printf("feed ended at t=%s; sender finished=%s\n",
              sim::format_time(sched.now()).c_str(),
              snd.finished() ? "yes" : "NO");
  std::printf("  bursts written: %d (%llu bytes)\n", kBursts,
              static_cast<unsigned long long>(written));
  std::printf("  keepalives sent: %llu (idle-gap coverage)\n",
              static_cast<unsigned long long>(snd.stats().keepalives_sent));
  std::printf("  retransmissions: %llu, NAKs: %llu\n",
              static_cast<unsigned long long>(snd.stats().retransmissions),
              static_cast<unsigned long long>(snd.stats().naks_received));
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::printf("  receiver %zu received %llu bytes, update period now "
                "%lld jiffies\n",
                i, static_cast<unsigned long long>(got[i]),
                static_cast<long long>(receivers[i]->update_period()));
  }
  snd.stop();
  for (auto& r : receivers) r->stop();
  return 0;
}
